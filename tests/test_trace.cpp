// Invariant tests for the trace layer (src/trace/): spec parsing, the
// sink's exact overflow accounting, per-sink event ordering (end times
// monotone in append order, spans disjoint-or-contained), fixed-seed
// determinism of the trajectory-property aggregates, and — the part
// that keeps the BENCH summary honest — the merged summary matching a
// brute-force recount of the drained timeline events. The pool test at
// the bottom is the executable form of the CI barrier assertion: with
// an unlimited thread budget the shard pool spawns real workers and
// barrier waits must be recorded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/two_choices.hpp"
#include "graph/complete.hpp"
#include "jobs/budget.hpp"
#include "opinion/assignment.hpp"
#include "rng/seed.hpp"
#include "sim/latency.hpp"
#include "sim/sharded_engine.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

namespace plurality {
namespace {

using trace::EventKind;
using trace::Mode;
using trace::Registry;
using trace::TraceSummary;

TwoChoicesAsync<CompleteGraph> make_proto(const CompleteGraph& g,
                                          std::uint64_t n,
                                          Xoshiro256& rng) {
  return TwoChoicesAsync<CompleteGraph>(
      g, assign_two_colors(n, (n * 3) / 4, rng));
}

/// One full queued-engine run under the current trace configuration;
/// returns the merged summary.
TraceSummary run_queued_once(std::uint64_t seed, unsigned shards) {
  const std::uint64_t n = 512;
  const CompleteGraph g(n);
  const ExponentialLatency latency(1.0);
  Xoshiro256 rng(seed);
  auto proto = make_proto(g, n, rng);
  const auto result =
      run_sharded_queued(proto, latency, QueryDiscipline::kBlocking, rng(),
                         shards, /*max_time=*/1e6);
  EXPECT_TRUE(result.consensus);
  return Registry::instance().summarize();
}

TEST(TraceSpec, AcceptedValuesResolveAsDocumented) {
  EXPECT_EQ(trace::parse_trace_spec("off").mode, Mode::kOff);
  EXPECT_EQ(trace::parse_trace_spec("none").mode, Mode::kOff);
  EXPECT_EQ(trace::parse_trace_spec("summary").mode, Mode::kSummary);
  EXPECT_EQ(trace::parse_trace_spec("on").mode, Mode::kSummary);
  const auto timeline = trace::parse_trace_spec("/tmp/out.json");
  EXPECT_EQ(timeline.mode, Mode::kTimeline);
  EXPECT_EQ(timeline.path, "/tmp/out.json");
  EXPECT_TRUE(trace::parse_trace_spec("off").path.empty());
}

TEST(TraceSpec, EmptyValueIsRejectedNamingTheFlag) {
  try {
    trace::parse_trace_spec("");
    FAIL() << "empty --trace= value must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("--trace="), std::string::npos)
        << "rejection must name the flag: " << e.what();
  }
}

TEST(TraceSink, OverflowDropCountIsExact) {
  // A capacity-8 timeline sink fed 8 + 5 events keeps exactly the first
  // 8 and truthfully reports 5 drops — while the aggregate counters see
  // every one of the 13.
  trace::Sink sink(/*tid=*/0, /*timeline_capacity=*/8);
  for (int i = 0; i < 13; ++i) {
    sink.steal(/*ts=*/i, /*migrated=*/1);
  }
  EXPECT_EQ(sink.timeline_size(), 8u);
  EXPECT_EQ(sink.dropped(), 5u);
  EXPECT_EQ(sink.steal_count(), 13u);
  // The retained prefix is the first 8 appends, in order.
  for (std::size_t i = 0; i < sink.timeline_size(); ++i) {
    EXPECT_EQ(sink.timeline_at(i).ts_ns, static_cast<std::int64_t>(i));
    EXPECT_EQ(sink.timeline_at(i).kind, EventKind::kSteal);
  }
}

TEST(TraceSink, AggregatesOnlySinkRecordsNoTimeline) {
  trace::Sink sink(/*tid=*/0, /*timeline_capacity=*/0);
  sink.shard_span(0, 100, 7);
  sink.barrier_wait(100, 50);
  sink.queue_depth(150, 3);
  EXPECT_EQ(sink.timeline_size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u) << "nothing was asked for, nothing drops";
  EXPECT_EQ(sink.work_ns(), 100u);
  EXPECT_EQ(sink.ticks(), 7u);
  EXPECT_EQ(sink.barrier_wait_count(), 1u);
  EXPECT_EQ(sink.depth_samples(), 1u);
}

TEST(TraceSink, DepthHistogramClampsIntoLastBucket) {
  trace::Sink sink(0, 0);
  sink.queue_depth(0, trace::kDepthBuckets + 1000);
  sink.queue_depth(0, 5);
  EXPECT_EQ(sink.depth_bucket(trace::kDepthBuckets - 1), 1u);
  EXPECT_EQ(sink.depth_bucket(5), 1u);
  EXPECT_EQ(sink.depth_samples(), 2u);
}

TEST(TraceTimeline, PerSinkEventsAreEndMonotoneAndWellNested) {
  trace::TraceSpec spec;
  spec.mode = Mode::kTimeline;
  Registry::instance().configure(spec);
  run_queued_once(/*seed=*/91, /*shards=*/4);

  std::size_t sinks_seen = 0;
  std::size_t events_seen = 0;
  Registry::instance().for_each_sink([&](const trace::Sink& sink) {
    ++sinks_seen;
    const std::size_t count = sink.timeline_size();
    events_seen += count;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const trace::Event& a = sink.timeline_at(i);
      const trace::Event& b = sink.timeline_at(i + 1);
      // Events are appended when they *end*, so end times are
      // nondecreasing per sink in append order.
      EXPECT_LE(a.ts_ns + a.dur_ns, b.ts_ns + b.dur_ns)
          << "end times regressed at event " << i;
    }
    // Spans from one thread never partially overlap: any two are
    // disjoint in time or one contains the other (well-nesting).
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        const trace::Event& a = sink.timeline_at(i);
        const trace::Event& b = sink.timeline_at(j);
        const bool disjoint = b.ts_ns >= a.ts_ns + a.dur_ns ||
                              a.ts_ns >= b.ts_ns + b.dur_ns;
        const bool a_in_b = b.ts_ns <= a.ts_ns &&
                            a.ts_ns + a.dur_ns <= b.ts_ns + b.dur_ns;
        const bool b_in_a = a.ts_ns <= b.ts_ns &&
                            b.ts_ns + b.dur_ns <= a.ts_ns + a.dur_ns;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "events " << i << " and " << j << " partially overlap";
      }
    }
  });
  EXPECT_GE(sinks_seen, 1u);
  EXPECT_GT(events_seen, 0u);
  Registry::instance().configure(trace::TraceSpec{});  // back to summary
}

TEST(TraceRun, TrajectoryAggregatesAreSeedDeterministic) {
  // Ticks, drained deliveries, and the queue-depth histogram quantiles
  // are trajectory properties of (seed, shards): two identical runs
  // must agree exactly, regardless of wall-clock jitter.
  Registry::instance().configure(trace::TraceSpec{});  // summary mode
  const TraceSummary first = run_queued_once(7, 4);
  Registry::instance().configure(trace::TraceSpec{});
  const TraceSummary second = run_queued_once(7, 4);
  EXPECT_EQ(first.ticks, second.ticks);
  EXPECT_EQ(first.queue_drained, second.queue_drained);
  EXPECT_EQ(first.depth_samples, second.depth_samples);
  EXPECT_EQ(first.depth_p50, second.depth_p50);
  EXPECT_EQ(first.depth_p99, second.depth_p99);
  EXPECT_EQ(first.dropped, 0u) << "summary mode has no timeline to drop";
}

TEST(TraceRun, SummaryMatchesBruteForceRecountOfTimeline) {
  trace::TraceSpec spec;
  spec.mode = Mode::kTimeline;
  // A capacity large enough that nothing drops — the recount must see
  // every event the aggregates saw.
  Registry::instance().configure(spec, /*timeline_capacity=*/1u << 20);
  const TraceSummary summary = run_queued_once(23, 4);
  ASSERT_EQ(summary.dropped, 0u);

  std::uint64_t ticks = 0;
  std::uint64_t drained = 0;
  std::uint64_t barrier_waits = 0;
  std::uint64_t steals = 0;
  std::uint64_t events = 0;
  std::vector<std::uint64_t> depths;
  Registry::instance().for_each_sink([&](const trace::Sink& sink) {
    const std::size_t count = sink.timeline_size();
    events += count;
    for (std::size_t i = 0; i < count; ++i) {
      const trace::Event& e = sink.timeline_at(i);
      switch (e.kind) {
        case EventKind::kShardTicks:
          ticks += e.value;
          break;
        case EventKind::kQueueDrain:
          drained += e.value;
          break;
        case EventKind::kQueueDepth:
          depths.push_back(std::min<std::uint64_t>(
              e.value, trace::kDepthBuckets - 1));
          break;
        case EventKind::kBarrierWait:
          ++barrier_waits;
          break;
        case EventKind::kSteal:
          ++steals;
          break;
        case EventKind::kPark:
          break;
      }
    }
  });
  EXPECT_EQ(summary.ticks, ticks);
  EXPECT_EQ(summary.queue_drained, drained);
  EXPECT_EQ(summary.barrier_wait_count, barrier_waits);
  EXPECT_EQ(summary.steal_count, steals);
  EXPECT_EQ(summary.events_recorded, events);
  EXPECT_EQ(summary.depth_samples, depths.size());

  // Quantiles: the histogram computes the k-th order statistic with
  // k = max(1, round(q * samples)); recount it from the raw depths.
  std::sort(depths.begin(), depths.end());
  const auto order_stat = [&](double q) {
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(depths.size()) + 0.5));
    return depths[rank - 1];
  };
  ASSERT_FALSE(depths.empty());
  EXPECT_EQ(summary.depth_p50, order_stat(0.50));
  EXPECT_EQ(summary.depth_p99, order_stat(0.99));
  Registry::instance().configure(trace::TraceSpec{});
}

TEST(TraceRun, OffModeRecordsNothing) {
  trace::TraceSpec spec;
  spec.mode = Mode::kOff;
  Registry::instance().configure(spec);
  run_queued_once(5, 4);
  const TraceSummary summary = Registry::instance().summarize();
  EXPECT_EQ(summary.ticks, 0u);
  EXPECT_EQ(summary.events_recorded, 0u);
  EXPECT_EQ(summary.barrier_wait_count, 0u);
  EXPECT_EQ(summary.depth_samples, 0u);
  Registry::instance().configure(trace::TraceSpec{});
}

TEST(TracePool, RealShardWorkersRecordBarrierWaits) {
  // With an unlimited thread budget the shard pool spawns real workers,
  // and every epoch ends in a caller barrier wait: barrier_wait_count
  // is structurally nonzero. (Under plurality_exp's --jobs= cap the
  // process executor holds every budget token, pools run inline, and
  // the harness's barrier waits come from the executor's completion
  // wait instead — this test pins the pool path deterministically.)
  jobs::ThreadBudget::global().reset_unlimited();
  Registry::instance().configure(trace::TraceSpec{});
  const std::uint64_t n = 1024;
  const CompleteGraph g(n);
  Xoshiro256 rng(1234);
  auto proto = make_proto(g, n, rng);
  const auto result = run_sharded(proto, rng(), /*num_shards=*/4, 1e6);
  EXPECT_TRUE(result.consensus);
  const TraceSummary summary = Registry::instance().summarize();
  EXPECT_GT(summary.barrier_wait_count, 0u);
  EXPECT_GT(summary.work_ns, 0u);
  EXPECT_GT(summary.ticks, 0u);
  const double frac = summary.barrier_wait_frac();
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 1.0);
}

}  // namespace
}  // namespace plurality
