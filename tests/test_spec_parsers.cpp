// Property and round-trip tests for the CLI spec parsers — the
// `--engine=`, `--graph=`, `--latency=`, `--perturb=`,
// `--perturb-target=`, `--trace=`, `--sampling=`, and `--numa=` axes. Three properties, each
// checked exhaustively over the accepted vocabulary and then fuzzed
// with 10k seeded random strings per parser (the CI sanitizer jobs run
// this same binary under ASan/UBSan):
//   1. round-trip: every accepted value re-parses to an equal spec
//      (parse(name(k)) == k, and alias forms resolve as documented);
//   2. rejection names the flag: every rejected string throws
//      ContractViolation whose message contains the flag, so a user
//      can tell *which* axis of a long command line was malformed;
//   3. totality: a parser either returns a valid spec or throws
//      ContractViolation — no crash, no other exception type — for
//      arbitrary byte strings.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/factory.hpp"
#include "rng/batch.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/engine_select.hpp"
#include "sim/latency.hpp"
#include "sim/numa.hpp"
#include "sim/perturb.hpp"
#include "support/assert.hpp"
#include "trace/trace.hpp"

namespace plurality {
namespace {

/// A pseudo-random byte string: printable ASCII plus a sprinkling of
/// high bytes, length 0..23 — enough to hit empty strings, keyword
/// prefixes, and plain garbage.
std::string random_string(Xoshiro256& rng) {
  const std::uint64_t len = uniform_below(rng, 24);
  std::string s;
  s.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    const std::uint64_t roll = uniform_below(rng, 100);
    if (roll < 90) {
      s.push_back(static_cast<char>(32 + uniform_below(rng, 95)));
    } else {
      s.push_back(static_cast<char>(128 + uniform_below(rng, 128)));
    }
  }
  return s;
}

/// Runs `parse` on 10k seeded random strings; every call must either
/// succeed or throw ContractViolation mentioning `flag`.
template <typename Parse>
void fuzz_parser(const char* flag, std::uint64_t seed, Parse&& parse) {
  Xoshiro256 rng(seed);
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::string input = random_string(rng);
    try {
      parse(input);
      ++accepted;
    } catch (const ContractViolation& e) {
      ++rejected;
      EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
          << flag << " rejection must name the flag; input was '" << input
          << "', message: " << e.what();
    }
    // Any other exception type escapes and fails the test outright.
  }
  EXPECT_EQ(accepted + rejected, 10000);
}

TEST(SpecParsers, EngineRoundTripsAndRejectsNamingTheFlag) {
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kHeap,
        EngineKind::kSuperposition, EngineKind::kSharded}) {
    EXPECT_EQ(parse_engine_kind(engine_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_engine_kind("warp"), ContractViolation);
  fuzz_parser("--engine=", 101,
              [](const std::string& s) { parse_engine_kind(s); });
}

TEST(SpecParsers, GraphRoundTripsAndRejectsNamingTheFlag) {
  for (const GraphKind kind :
       {GraphKind::kComplete, GraphKind::kRing, GraphKind::kTorus,
        GraphKind::kErdosRenyi, GraphKind::kRandomRegular,
        GraphKind::kSbm}) {
    EXPECT_EQ(parse_graph_kind(graph_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_graph_kind("hypercube"), ContractViolation);
  fuzz_parser("--graph=", 202,
              [](const std::string& s) { parse_graph_kind(s); });
}

TEST(SpecParsers, LatencyRoundTripsAndRejectsNamingTheFlag) {
  for (const LatencyKind kind :
       {LatencyKind::kZero, LatencyKind::kConstant,
        LatencyKind::kExponential, LatencyKind::kPareto,
        LatencyKind::kAging}) {
    EXPECT_EQ(parse_latency_kind(latency_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_latency_kind("uniform"), ContractViolation);
  fuzz_parser("--latency=", 303,
              [](const std::string& s) { parse_latency_kind(s); });
}

TEST(SpecParsers, PerturbRoundTripsAndRejectsNamingTheFlag) {
  for (const PerturbKind kind :
       {PerturbKind::kNone, PerturbKind::kInject, PerturbKind::kCrash,
        PerturbKind::kChurn, PerturbKind::kAdversary}) {
    EXPECT_EQ(parse_perturb_kind(perturb_kind_name(kind)), kind);
  }
  for (const PerturbTarget target :
       {PerturbTarget::kUniform, PerturbTarget::kHub}) {
    EXPECT_EQ(parse_perturb_target(perturb_target_name(target)), target);
  }
  EXPECT_THROW(parse_perturb_kind("meteor"), ContractViolation);
  EXPECT_THROW(parse_perturb_target("leaves"), ContractViolation);
  fuzz_parser("--perturb=", 404,
              [](const std::string& s) { parse_perturb_kind(s); });
  fuzz_parser("--perturb-target=", 505,
              [](const std::string& s) { parse_perturb_target(s); });
}

TEST(SpecParsers, TraceRoundTripsAndRejectsNamingTheFlag) {
  // The keyword forms resolve as documented, aliases included.
  EXPECT_EQ(trace::parse_trace_spec("off").mode, trace::Mode::kOff);
  EXPECT_EQ(trace::parse_trace_spec("none").mode, trace::Mode::kOff);
  EXPECT_EQ(trace::parse_trace_spec("summary").mode,
            trace::Mode::kSummary);
  EXPECT_EQ(trace::parse_trace_spec("on").mode, trace::Mode::kSummary);
  // Canonical names re-parse to an equal spec.
  for (const char* canonical : {"off", "summary"}) {
    const auto spec = trace::parse_trace_spec(canonical);
    EXPECT_STREQ(trace::mode_name(spec.mode), canonical);
    const auto again = trace::parse_trace_spec(trace::mode_name(spec.mode));
    EXPECT_EQ(again.mode, spec.mode);
    EXPECT_EQ(again.path, spec.path);
  }
  // A timeline spec round-trips through its own path.
  const auto timeline = trace::parse_trace_spec("out/run.trace.json");
  EXPECT_EQ(timeline.mode, trace::Mode::kTimeline);
  const auto reparsed = trace::parse_trace_spec(timeline.path);
  EXPECT_EQ(reparsed.mode, timeline.mode);
  EXPECT_EQ(reparsed.path, timeline.path);

  EXPECT_THROW(trace::parse_trace_spec(""), ContractViolation);
  fuzz_parser("--trace=", 606, [](const std::string& s) {
    const auto spec = trace::parse_trace_spec(s);
    // Totality plus the round-trip property on every accepted string:
    // a timeline spec's path is the input itself.
    if (spec.mode == trace::Mode::kTimeline) {
      const auto again = trace::parse_trace_spec(spec.path);
      EXPECT_EQ(again.mode, spec.mode);
      EXPECT_EQ(again.path, spec.path);
    }
  });
}

TEST(SpecParsers, SamplingRoundTripsAndRejectsNamingTheFlag) {
  for (const SamplingMode mode :
       {SamplingMode::kScalar, SamplingMode::kBatch}) {
    EXPECT_EQ(parse_sampling_mode(sampling_mode_name(mode)), mode);
  }
  EXPECT_THROW(parse_sampling_mode("simd"), ContractViolation);
  fuzz_parser("--sampling=", 707,
              [](const std::string& s) { parse_sampling_mode(s); });
}

TEST(SpecParsers, NumaRoundTripsAndRejectsNamingTheFlag) {
  for (const NumaMode mode :
       {NumaMode::kOff, NumaMode::kFirstTouch, NumaMode::kBind}) {
    EXPECT_EQ(parse_numa_mode(numa_mode_name(mode)), mode);
  }
  EXPECT_THROW(parse_numa_mode("interleave"), ContractViolation);
  fuzz_parser("--numa=", 808,
              [](const std::string& s) { parse_numa_mode(s); });
}

}  // namespace
}  // namespace plurality
