// Build smoke test: instantiates one protocol of every kind end-to-end.

#include <gtest/gtest.h>

#include "core/async_one_extra_bit.hpp"
#include "core/one_extra_bit.hpp"
#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "sim/continuous_engine.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/sync_driver.hpp"

namespace plurality {
namespace {

TEST(Smoke, EverythingLinksAndRuns) {
  Xoshiro256 rng(7);
  const CompleteGraph g(256);

  TwoChoicesSync sync_proto(g, assign_two_colors(256, 192, rng));
  const auto sync_result = run_sync(sync_proto, rng, 500);
  EXPECT_TRUE(sync_result.consensus);

  TwoChoicesAsync async_proto(g, assign_two_colors(256, 192, rng));
  const auto seq_result = run_sequential(async_proto, rng, 500.0);
  EXPECT_TRUE(seq_result.consensus);

  auto oeb = AsyncOneExtraBit<CompleteGraph>::make(
      g, assign_two_colors(256, 192, rng));
  const auto oeb_result = run_sequential(oeb, rng, 5000.0);
  EXPECT_TRUE(oeb_result.consensus);
}

}  // namespace
}  // namespace plurality
