// Tests for the experiment harness: CLI args, table rendering, and the
// thread-count-independent repetition runner.

#include <gtest/gtest.h>

#include <sstream>

#include "experiment/args.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "rng/distributions.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

Args make_args(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgsTest, ParsesKeyValuesAndFlags) {
  const Args args = make_args({"--n=4096", "--rate=2.5", "--csv",
                               "--name=exp_one"});
  EXPECT_EQ(args.get_u64("n", 0), 4096u);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(args.get_string("name", ""), "exp_one");
  EXPECT_TRUE(args.csv());
  EXPECT_FALSE(args.has_flag("verbose"));
}

TEST(ArgsTest, FallbacksForMissingKeys) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_u64("n", 77), 77u);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "dflt"), "dflt");
  EXPECT_FALSE(args.csv());
}

TEST(ArgsTest, RejectsPositionalArguments) {
  EXPECT_THROW(make_args({"positional"}), ContractViolation);
}

TEST(ArgsTest, PositionalErrorNamesTheArgument) {
  try {
    make_args({"n=4096"});  // typo: forgot the leading --
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("n=4096"), std::string::npos)
        << e.what();
  }
}

TEST(ArgsTest, RejectsMalformedUnsigned) {
  const Args args = make_args({"--reps=abc", "--n=12x", "--neg=-3",
                               "--plus=+3", "--empty=", "--huge="
                               "99999999999999999999999999"});
  EXPECT_THROW(args.get_u64("reps", 0), ContractViolation);
  EXPECT_THROW(args.get_u64("n", 0), ContractViolation);
  EXPECT_THROW(args.get_u64("neg", 0), ContractViolation);
  EXPECT_THROW(args.get_u64("plus", 0), ContractViolation);
  EXPECT_THROW(args.get_u64("empty", 0), ContractViolation);
  EXPECT_THROW(args.get_u64("huge", 0), ContractViolation);
}

TEST(ArgsTest, MalformedUnsignedErrorNamesTheFlag) {
  const Args args = make_args({"--reps=abc"});
  try {
    args.get_u64("reps", 0);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reps"), std::string::npos) << what;
    EXPECT_NE(what.find("abc"), std::string::npos) << what;
  }
}

TEST(ArgsTest, RejectsMalformedDouble) {
  const Args args = make_args({"--rate=1.5.2", "--eps=", "--x=fast"});
  EXPECT_THROW(args.get_double("rate", 0.0), ContractViolation);
  EXPECT_THROW(args.get_double("eps", 0.0), ContractViolation);
  EXPECT_THROW(args.get_double("x", 0.0), ContractViolation);
}

TEST(ArgsTest, AcceptsWellFormedNumbers) {
  const Args args = make_args({"--n=18446744073709551615", "--rate=1e3",
                               "--eps=-0.25"});
  EXPECT_EQ(args.get_u64("n", 0), UINT64_MAX);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), -0.25);
}

TEST(ArgsTest, RejectsWhitespaceAndSignTricks) {
  // strtoull's own parsing skips whitespace and then accepts a sign,
  // wrapping " -3" to ~2^64; the getters must not let that through.
  const Args args = make_args({"--n= -3", "--m= 5", "--x= 1.5",
                               "--bad=nan", "--worse=inf"});
  EXPECT_THROW(args.get_u64("n", 0), ContractViolation);
  EXPECT_THROW(args.get_u64("m", 0), ContractViolation);
  EXPECT_THROW(args.get_double("x", 0.0), ContractViolation);
  EXPECT_THROW(args.get_double("bad", 0.0), ContractViolation);
  EXPECT_THROW(args.get_double("worse", 0.0), ContractViolation);
}

TEST(ArgsTest, DoubleRangeEdges) {
  // Gradual underflow (subnormals) is representable and must parse;
  // only true overflow is rejected.
  const Args args = make_args({"--tiny=1e-320", "--huge=1e400"});
  EXPECT_GT(args.get_double("tiny", 0.0), 0.0);
  EXPECT_LT(args.get_double("tiny", 0.0), 1e-300);
  EXPECT_THROW(args.get_double("huge", 0.0), ContractViolation);
}

TEST(ArgsTest, RejectsEmptyAndKeylessOptions) {
  EXPECT_THROW(make_args({"--"}), ContractViolation);
  EXPECT_THROW(make_args({"--=value"}), ContractViolation);
}

TEST(TableTest, AlignedRendering) {
  Table t("demo", {"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvMode) {
  Table t("demo", {"a", "b"});
  t.row().cell(std::uint64_t{1}).cell(std::uint64_t{2});
  std::ostringstream os;
  t.print(os, /*csv=*/true);
  EXPECT_EQ(os.str(), "# demo\na,b\n1,2\n");
}

TEST(TableTest, RowWidthContract) {
  Table t("demo", {"a", "b"});
  t.row().cell("only-one");
  EXPECT_THROW(t.row(), ContractViolation);  // previous row incomplete
  Table t2("demo", {"a"});
  t2.row().cell("x");
  EXPECT_THROW(t2.row().cell("y").cell("z"), ContractViolation);
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  const SeedSequence seeds(31337);
  auto body = [](std::uint64_t rep, Xoshiro256& rng) {
    // A value depending on both the stream and the rep index.
    return static_cast<double>(uniform_below(rng, 1000000)) +
           static_cast<double>(rep) * 1e7;
  };
  const auto serial = run_repetitions(32, seeds, body, 1);
  const auto parallel = run_repetitions(32, seeds, body, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(Runner, ResultsInRepetitionOrder) {
  const SeedSequence seeds(1);
  const auto results = run_repetitions(
      10, seeds,
      [](std::uint64_t rep, Xoshiro256&) {
        return static_cast<double>(rep);
      },
      4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], static_cast<double>(i));
  }
}

TEST(Runner, MultiSlotShapesAndOrder) {
  const SeedSequence seeds(2);
  const auto slots = run_repetitions_multi(
      6, 3, seeds,
      [](std::uint64_t rep, Xoshiro256&) {
        const auto r = static_cast<double>(rep);
        return std::vector<double>{r, r * 10, r * 100};
      },
      3);
  ASSERT_EQ(slots.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_EQ(slots[s].size(), 6u);
    for (std::size_t rep = 0; rep < 6; ++rep) {
      EXPECT_DOUBLE_EQ(slots[s][rep],
                       static_cast<double>(rep) * std::pow(10.0, s));
    }
  }
}

TEST(Runner, Contracts) {
  const SeedSequence seeds(3);
  auto body = [](std::uint64_t, Xoshiro256&) { return 0.0; };
  EXPECT_THROW(run_repetitions(0, seeds, body), ContractViolation);
}

}  // namespace
}  // namespace plurality
