// Tests for the packed SoA opinion backend: PackedColors parity with a
// plain ColorId vector under random operation sequences at every
// width, the u8/u16/u32 width-selection boundaries (num_colors = 255,
// 256, 257), the packed merge path, and — the contract the sharded
// engine's width dispatch rests on — bit-identical consensus
// trajectories when the same run is forced through u8, u16, and u32
// storage.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/three_majority.hpp"
#include "core/two_choices.hpp"
#include "core/voter.hpp"
#include "graph/complete.hpp"
#include "opinion/assignment.hpp"
#include "opinion/packed.hpp"
#include "opinion/table.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/sharded_engine.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(ColorWidth, SelectionBoundaries) {
  // u8 holds 256 distinct colors (values 0..255); 257 colors need u16;
  // the u16/u32 boundary sits at 65536 the same way.
  EXPECT_EQ(color_width_for(1), ColorWidth::kU8);
  EXPECT_EQ(color_width_for(255), ColorWidth::kU8);
  EXPECT_EQ(color_width_for(256), ColorWidth::kU8);
  EXPECT_EQ(color_width_for(257), ColorWidth::kU16);
  EXPECT_EQ(color_width_for(65536), ColorWidth::kU16);
  EXPECT_EQ(color_width_for(65537), ColorWidth::kU32);
  EXPECT_EQ(color_width_bytes(ColorWidth::kU8), 1u);
  EXPECT_EQ(color_width_bytes(ColorWidth::kU16), 2u);
  EXPECT_EQ(color_width_bytes(ColorWidth::kU32), 4u);
}

TEST(PackedColors, MatchesReferenceVectorUnderRandomOps) {
  // Drive a PackedColors at each width and a plain vector<ColorId>
  // through the same random get/set sequence; they must never diverge.
  for (const ColorWidth width :
       {ColorWidth::kU8, ColorWidth::kU16, ColorWidth::kU32}) {
    const std::uint64_t n = 257;
    const ColorId max_color = 255;  // representable at every width
    Xoshiro256 rng(20240809);
    std::vector<ColorId> reference(n);
    for (auto& c : reference) {
      c = static_cast<ColorId>(uniform_below(rng, max_color + 1));
    }
    PackedColors packed(reference, width);
    for (int op = 0; op < 4096; ++op) {
      const auto u = static_cast<NodeId>(uniform_below(rng, n));
      if (uniform_below(rng, 2) == 0) {
        const auto c = static_cast<ColorId>(uniform_below(rng, max_color + 1));
        reference[u] = c;
        packed.set(u, c);
      } else {
        ASSERT_EQ(packed.get(u), reference[u]) << "width mismatch at node "
                                               << u;
      }
    }
    std::vector<ColorId> unpacked(n);
    packed.unpack_into(unpacked);
    EXPECT_EQ(unpacked, reference);
  }
}

TEST(PackedColors, CloneAndRangeCopiesPreserveContents) {
  const std::vector<ColorId> colors = {3, 1, 4, 1, 5, 9, 2, 6};
  const PackedColors a(colors, ColorWidth::kU16);
  const PackedColors b = a.clone();
  PackedColors c = PackedColors::uninitialized(colors.size(),
                                               ColorWidth::kU16);
  c.copy_range_from(a, 0, 4);
  c.copy_range_from(b, 4, colors.size());
  for (NodeId u = 0; u < colors.size(); ++u) {
    EXPECT_EQ(b.get(u), colors[u]);
    EXPECT_EQ(c.get(u), colors[u]);
  }
}

TEST(ShardDeltaSlabTest, DeferredInitRowsClearPerShard) {
  // The first-touch path skips construction-time zeroing and relies on
  // the owning worker's clear(s); after clearing, the rows must behave
  // exactly like eagerly-initialized ones.
  const std::uint64_t shards = 3;
  const ColorId num_colors = 5;
  ShardDeltaSlab deferred(shards, num_colors, /*deferred_init=*/true);
  for (std::uint64_t s = 0; s < shards; ++s) deferred.clear(s);
  ShardDeltaSlab eager(shards, num_colors);
  for (std::uint64_t s = 0; s < shards; ++s) {
    const auto d = deferred.shard(s);
    const auto e = eager.shard(s);
    ASSERT_EQ(d.size(), e.size());
    for (std::size_t c = 0; c < d.size(); ++c) {
      EXPECT_EQ(d[c], 0);
      EXPECT_EQ(e[c], 0);
    }
  }
}

TEST(OpinionTablePacked, WidthFollowsNumColorsAndAggregatesMatch) {
  // The same physical coloring through all three resolved widths: the
  // table-level API (color, support, surviving, plurality) must be
  // width-invariant.
  Xoshiro256 rng(7);
  const std::uint64_t n = 300;
  std::vector<ColorId> colors(n);
  for (auto& c : colors) c = static_cast<ColorId>(uniform_below(rng, 200));

  const OpinionTable narrow(colors, 256);
  const OpinionTable mid(colors, 257);
  const OpinionTable wide(colors, 70000);
  EXPECT_EQ(narrow.width(), ColorWidth::kU8);
  EXPECT_EQ(mid.width(), ColorWidth::kU16);
  EXPECT_EQ(wide.width(), ColorWidth::kU32);

  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(narrow.color(u), colors[u]);
    ASSERT_EQ(mid.color(u), colors[u]);
    ASSERT_EQ(wide.color(u), colors[u]);
  }
  for (ColorId c = 0; c < 200; ++c) {
    ASSERT_EQ(mid.support(c), narrow.support(c));
    ASSERT_EQ(wide.support(c), narrow.support(c));
  }
  EXPECT_EQ(mid.surviving_colors(), narrow.surviving_colors());
  EXPECT_EQ(wide.surviving_colors(), narrow.surviving_colors());
  EXPECT_EQ(mid.plurality_color(), narrow.plurality_color());
  EXPECT_EQ(wide.plurality_color(), narrow.plurality_color());

  // The packed footprint is what shrinks: 1/2/4 bytes of color state
  // per node plus the (width-independent) support counters.
  EXPECT_LT(narrow.state_bytes_per_node(), mid.state_bytes_per_node());
  EXPECT_LT(mid.state_bytes_per_node(), wide.state_bytes_per_node());
}

TEST(OpinionTablePacked, SetColorParityWithReferenceModel) {
  // Random set_color sequence vs a reference (vector + support
  // histogram) at a forced-u16 width.
  Xoshiro256 rng(99);
  const std::uint64_t n = 128;
  const ColorId k = 300;  // forces u16
  std::vector<ColorId> reference(n);
  for (auto& c : reference) c = static_cast<ColorId>(uniform_below(rng, k));
  OpinionTable table(reference, k);
  std::vector<std::uint64_t> support(k, 0);
  for (const ColorId c : reference) ++support[c];

  for (int op = 0; op < 2048; ++op) {
    const auto u = static_cast<NodeId>(uniform_below(rng, n));
    const auto c = static_cast<ColorId>(uniform_below(rng, k));
    --support[reference[u]];
    ++support[c];
    reference[u] = c;
    table.set_color(u, c);
  }
  std::uint64_t surviving = 0;
  std::uint64_t max_support = 0;
  for (ColorId c = 0; c < k; ++c) {
    ASSERT_EQ(table.support(c), support[c]);
    if (support[c] > 0) ++surviving;
    max_support = std::max(max_support, support[c]);
  }
  for (NodeId u = 0; u < n; ++u) ASSERT_EQ(table.color(u), reference[u]);
  EXPECT_EQ(table.surviving_colors(), surviving);
  EXPECT_EQ(table.support(table.plurality_color()), max_support);
}

/// Runs one sharded two-choices consensus with the table forced to
/// `num_colors` declared colors (only 2 are populated); returns the
/// trajectory fingerprint. Inflating num_colors moves the resolved
/// width without touching a single RNG draw, so all three widths must
/// produce bit-identical results.
AsyncRunResult run_forced_width(ColorId declared_colors,
                                ColorWidth expect_width) {
  const std::uint64_t n = 256;
  const CompleteGraph g(n);
  Xoshiro256 rng(11);
  Assignment assignment = assign_two_colors(n, (n * 3) / 4, rng);
  assignment.num_colors = declared_colors;
  assignment.counts.resize(declared_colors, 0);
  TwoChoicesAsync proto(g, std::move(assignment));
  EXPECT_EQ(proto.table().width(), expect_width);
  return run_sharded(proto, /*seed=*/42, /*num_shards=*/3, 1e6);
}

TEST(OpinionTablePacked, ShardedConsensusBitIdenticalAcrossWidths) {
  const AsyncRunResult u8 = run_forced_width(2, ColorWidth::kU8);
  const AsyncRunResult u16 = run_forced_width(300, ColorWidth::kU16);
  const AsyncRunResult u32 = run_forced_width(70000, ColorWidth::kU32);
  EXPECT_TRUE(u8.consensus);
  EXPECT_EQ(u8.ticks, u16.ticks);
  EXPECT_EQ(u8.ticks, u32.ticks);
  EXPECT_DOUBLE_EQ(u8.time, u16.time);
  EXPECT_DOUBLE_EQ(u8.time, u32.time);
  EXPECT_EQ(u8.winner, u16.winner);
  EXPECT_EQ(u8.winner, u32.winner);
  EXPECT_EQ(u8.consensus, u16.consensus);
  EXPECT_EQ(u8.consensus, u32.consensus);
}

TEST(OpinionTablePacked, QueuedConsensusBitIdenticalAcrossWidths) {
  // The delivery-queue driver width-dispatches independently; pin it
  // to the same bit-stability contract.
  const auto run_once = [](ColorId declared_colors) {
    const std::uint64_t n = 128;
    const CompleteGraph g(n);
    Xoshiro256 rng(13);
    Assignment assignment = assign_two_colors(n, (n * 3) / 4, rng);
    assignment.num_colors = declared_colors;
    assignment.counts.resize(declared_colors, 0);
    ThreeMajorityAsync proto(g, std::move(assignment));
    const ZeroLatency latency;
    return run_sharded_queued(proto, latency, QueryDiscipline::kBlocking,
                              /*seed=*/21, /*num_shards=*/2, /*max_time=*/1e6);
  };
  const AsyncRunResult u8 = run_once(2);
  const AsyncRunResult u16 = run_once(300);
  EXPECT_EQ(u8.ticks, u16.ticks);
  EXPECT_DOUBLE_EQ(u8.time, u16.time);
  EXPECT_EQ(u8.winner, u16.winner);
  EXPECT_EQ(u8.consensus, u16.consensus);
}

TEST(OpinionTablePacked, RejectsWidthNarrowerThanNumColors) {
  const std::vector<ColorId> colors = {0, 1, 2};
  EXPECT_THROW(OpinionTable(colors, 300, ColorWidth::kU8), ContractViolation);
}

}  // namespace
}  // namespace plurality
