// Unit tests for the discrete-event queue: time ordering, the
// insertion-order tie-break that makes continuous runs deterministic,
// capacity reservation, and the move-out pop contract.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/assert.hpp"

namespace plurality {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(3.0, 30);
  q.push(1.0, 10);
  q.push(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesPopInInsertionOrder) {
  EventQueue<std::string> q;
  q.push(1.0, "first");
  q.push(1.0, "second");
  q.push(1.0, "third");
  EXPECT_EQ(q.pop().payload, "first");
  EXPECT_EQ(q.pop().payload, "second");
  EXPECT_EQ(q.pop().payload, "third");
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(5.0, 5);
  q.push(1.0, 1);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(2.0, 2);
  q.push(7.0, 7);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 5);
  EXPECT_EQ(q.pop().payload, 7);
}

TEST(EventQueue, EventCarriesItsTime) {
  EventQueue<int> q;
  q.push(2.5, 42);
  const auto e = q.pop();
  EXPECT_DOUBLE_EQ(e.time, 2.5);
  EXPECT_EQ(e.payload, 42);
}

TEST(EventQueue, ManyEventsStaySorted) {
  EventQueue<std::uint64_t> q;
  // Deterministic scramble of times.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.push(static_cast<double>((i * 7919) % 1000), i);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueue, ContractsOnEmptyAndNegativeTime) {
  EventQueue<int> q;
  EXPECT_THROW(q.pop(), ContractViolation);
  EXPECT_THROW(q.next_time(), ContractViolation);
  EXPECT_THROW(q.push(-1.0, 0), ContractViolation);
}

TEST(EventQueue, ReserveDoesNotDisturbContents) {
  EventQueue<int> q;
  q.push(2.0, 2);
  q.reserve(1024);
  q.push(1.0, 1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
}

TEST(EventQueue, MoveOnlyPayloadsMoveThroughPopWithoutCopies) {
  EventQueue<std::unique_ptr<int>> q;
  q.push(3.0, std::make_unique<int>(30));
  q.push(1.0, std::make_unique<int>(10));
  q.push(2.0, std::make_unique<int>(20));
  EXPECT_EQ(*q.pop().payload, 10);
  EXPECT_EQ(*q.pop().payload, 20);
  EXPECT_EQ(*q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MixedTiesAndTimesStayStableUnderChurn) {
  // Exercise the 4-ary sift paths: many colliding times interleaved
  // with pops must still come out in (time, insertion order).
  EventQueue<std::uint64_t> q;
  std::uint64_t seq = 0;
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      q.push(static_cast<double>((i * 13) % 5), seq++);
    }
    // Drain half; later rounds re-fill around the survivors.
    double prev_time = -1.0;
    std::uint64_t prev_seq = 0;
    for (int drain = 0; drain < 10; ++drain) {
      const auto e = q.pop();
      if (e.time == prev_time) {
        EXPECT_GT(e.seq, prev_seq);
      }
      EXPECT_GE(e.time, prev_time);
      prev_time = e.time;
      prev_seq = e.seq;
    }
  }
  double prev = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace plurality
