// Scheduling-determinism stress test for the job-graph experiment
// layer: a real registered experiment (two_choices_scaling on an SBM
// community graph) must emit bit-identical BENCH records and stdout
// whether it runs serially (--threads=1 --jobs=1) or on the process
// executor with any worker count (--jobs=1,2,8), across repeated runs.
// This is the executable form of the executor's determinism contract
// (jobs/executor.hpp): RNG streams are keyed by (seed, sweep-point,
// rep) and every rep writes a pre-sized slot, so scheduling order can
// never leak into the numbers.
//
// Links the experiment object library (see CMakeLists special-case),
// exactly like test_registry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment/args.hpp"
#include "experiment/json_writer.hpp"
#include "experiment/registry.hpp"

namespace plurality {
namespace {

Args make_args(const std::vector<const char*>& argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

struct RunOutput {
  std::string record;  // normalized JSON dump
  std::string stdout_text;
};

/// Runs two_choices_scaling small-but-real (SBM topology, 8 reps, two
/// sweep points) under the given scheduling flags and returns the BENCH
/// record with the scheduling-dependent fields pinned: wall clock and
/// the jobs/threads echoes differ across runs BY DESIGN, everything
/// else must not.
RunOutput run_scaling(const std::vector<const char*>& scheduling_flags) {
  const auto& registry = ExperimentRegistry::instance();
  const Experiment* experiment = registry.find("two_choices_scaling");
  EXPECT_NE(experiment, nullptr);

  std::vector<const char*> tail{"--graph=sbm", "--reps=8", "--max_n=2048",
                                "--seed=12345", "--csv"};
  tail.insert(tail.end(), scheduling_flags.begin(), scheduling_flags.end());

  ::testing::internal::CaptureStdout();
  JsonValue record = registry.run_to_record(*experiment, make_args(tail));
  RunOutput out;
  out.stdout_text = ::testing::internal::GetCapturedStdout();

  record["wall_clock_seconds"] = 0.0;
  JsonValue& params = record["params"];
  params["jobs_effective"] = 0;
  params["threads"] = 0;
  // Peak RSS is a host/allocator property, not a trajectory property —
  // it legitimately differs across worker counts and even across
  // identical reruns. numa_effective and bytes_per_node stay: both are
  // deterministic functions of the flags and the sweep.
  params["peak_rss_bytes"] = 0;
  // The trace summary documents the schedule (barrier waits, steals),
  // so like wall clock it differs across worker counts BY DESIGN; same
  // for the schedule-property trace series. Trajectory-property trace
  // series (the queue-depth quantiles) are NOT stripped — they must be
  // bit-identical like every other measured series.
  record["trace"] = JsonValue::object();
  const JsonValue& series = *record.find("series");
  JsonValue kept = JsonValue::array();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const std::string& name = series.at(i).find("name")->as_string();
    if (name == "trace_barrier_wait_frac" || name == "trace_steal_count") {
      continue;
    }
    kept.push_back(series.at(i));
  }
  record["series"] = std::move(kept);
  out.record = record.dump();
  return out;
}

TEST(SchedulingDeterminism, RecordsBitIdenticalAcrossJobsCounts) {
  // The ground truth: pure serial (no executor path at all).
  const RunOutput serial = run_scaling({"--threads=1", "--jobs=1"});
  ASSERT_NE(serial.record.find("\"rounds_vs_n\""), std::string::npos);

  // Executor path at increasing widths. --jobs=1 exercises the
  // zero-worker inline path; 2 and 8 are real work-stealing schedules
  // with different worker counts (and different steal interleavings
  // every run).
  for (const char* jobs : {"--jobs=1", "--jobs=2", "--jobs=8"}) {
    const RunOutput parallel = run_scaling({jobs});
    EXPECT_EQ(serial.record, parallel.record)
        << "BENCH record diverged from serial under " << jobs;
    EXPECT_EQ(serial.stdout_text, parallel.stdout_text)
        << "stdout diverged from serial under " << jobs;
  }
}

TEST(SchedulingDeterminism, RepeatedParallelRunsAreStable) {
  // Run-to-run stability at the widest setting: steal order differs
  // every time, the record must not.
  const RunOutput first = run_scaling({"--jobs=8"});
  for (int repeat = 0; repeat < 3; ++repeat) {
    const RunOutput again = run_scaling({"--jobs=8"});
    EXPECT_EQ(first.record, again.record)
        << "record changed between identical --jobs=8 runs";
    EXPECT_EQ(first.stdout_text, again.stdout_text);
  }
}

}  // namespace
}  // namespace plurality
